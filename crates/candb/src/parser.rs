//! Line-oriented parser for the `.dbc` subset used by the toolchain.

use std::fmt;

use crate::model::{ByteOrder, Database, Message, Signal, ValueTable};

/// Errors raised while parsing a `.dbc` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbcError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for DbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dbc parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DbcError {}

/// Parse `.dbc` source text.
///
/// Recognised records: `VERSION`, `BU_`, `BO_`, `SG_`, `CM_ BO_`,
/// `CM_ SG_`, `VAL_`. Unknown records are skipped, matching the tolerant
/// behaviour of industrial DBC tooling.
///
/// # Errors
///
/// [`DbcError`] with the offending line on malformed recognised records.
pub fn parse(source: &str) -> Result<Database, DbcError> {
    let mut db = Database::default();
    let mut current_msg: Option<usize> = None;

    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| DbcError {
            line: lineno,
            message,
        };

        if let Some(rest) = line.strip_prefix("VERSION") {
            db.version = rest.trim().trim_matches('"').to_owned();
        } else if let Some(rest) = line.strip_prefix("BU_:") {
            db.nodes = rest.split_whitespace().map(str::to_owned).collect();
        } else if let Some(rest) = line.strip_prefix("BO_ ") {
            // BO_ 100 reqSw: 8 VMG
            let mut parts = rest.split_whitespace();
            let id: u32 = parts
                .next()
                .ok_or_else(|| err("missing message id".into()))?
                .parse()
                .map_err(|_| err("bad message id".into()))?;
            let name = parts
                .next()
                .ok_or_else(|| err("missing message name".into()))?
                .trim_end_matches(':')
                .to_owned();
            let dlc: usize = parts
                .next()
                .ok_or_else(|| err("missing dlc".into()))?
                .parse()
                .map_err(|_| err("bad dlc".into()))?;
            let sender = parts.next().unwrap_or("Vector__XXX").to_owned();
            db.messages.push(Message {
                id,
                name,
                dlc,
                sender,
                signals: Vec::new(),
                comment: None,
            });
            current_msg = Some(db.messages.len() - 1);
        } else if let Some(rest) = line.strip_prefix("SG_ ") {
            let Some(msg_idx) = current_msg else {
                return Err(err("signal outside a message".into()));
            };
            let signal = parse_signal(rest).map_err(&err)?;
            db.messages[msg_idx].signals.push(signal);
        } else if let Some(rest) = line.strip_prefix("CM_ BO_ ") {
            // CM_ BO_ 100 "comment";
            let mut parts = rest.splitn(2, ' ');
            let id: u32 = parts
                .next()
                .unwrap_or_default()
                .parse()
                .map_err(|_| err("bad comment id".into()))?;
            let comment = parts
                .next()
                .unwrap_or_default()
                .trim()
                .trim_end_matches(';')
                .trim_matches('"')
                .to_owned();
            if let Some(m) = db.messages.iter_mut().find(|m| m.id == id) {
                m.comment = Some(comment);
            }
        } else if let Some(rest) = line.strip_prefix("CM_ SG_ ") {
            // CM_ SG_ 100 reqType "comment";
            let mut parts = rest.splitn(3, ' ');
            let id: u32 = parts
                .next()
                .unwrap_or_default()
                .parse()
                .map_err(|_| err("bad comment id".into()))?;
            let signame = parts.next().unwrap_or_default().to_owned();
            let comment = parts
                .next()
                .unwrap_or_default()
                .trim()
                .trim_end_matches(';')
                .trim_matches('"')
                .to_owned();
            if let Some(m) = db.messages.iter_mut().find(|m| m.id == id) {
                if let Some(s) = m.signals.iter_mut().find(|s| s.name == signame) {
                    s.comment = Some(comment);
                }
            }
        } else if let Some(rest) = line.strip_prefix("VAL_ ") {
            // VAL_ 100 reqType 0 "DIAG" 1 "UPDATE" ;
            parse_val(rest, &mut db).map_err(err)?;
        }
        // Unknown record types (NS_, BS_, attributes, …) are skipped.
    }
    Ok(db)
}

fn parse_signal(rest: &str) -> Result<Signal, String> {
    // reqType : 8|4@1+ (1,0) [0|15] "" ECU,GW
    let (name, rest) = rest
        .split_once(':')
        .ok_or_else(|| "missing `:` in signal".to_owned())?;
    let name = name.trim().to_owned();
    let mut parts = rest.split_whitespace();

    let layout = parts.next().ok_or("missing signal layout")?;
    // 8|4@1+
    let (startlen, order_sign) = layout
        .split_once('@')
        .ok_or_else(|| "missing `@` in signal layout".to_owned())?;
    let (start, len) = startlen
        .split_once('|')
        .ok_or_else(|| "missing `|` in signal layout".to_owned())?;
    let start_bit: u16 = start.parse().map_err(|_| "bad start bit".to_owned())?;
    let length: u16 = len.parse().map_err(|_| "bad signal length".to_owned())?;
    if length == 0 || length > 64 {
        return Err(format!("signal length {length} out of range 1..=64"));
    }
    let mut order_chars = order_sign.chars();
    let byte_order = match order_chars.next() {
        Some('1') => ByteOrder::LittleEndian,
        Some('0') => ByteOrder::BigEndian,
        other => return Err(format!("bad byte order {other:?}")),
    };
    let signed = match order_chars.next() {
        Some('+') => false,
        Some('-') => true,
        other => return Err(format!("bad sign marker {other:?}")),
    };

    let factor_offset = parts.next().ok_or("missing (factor,offset)")?;
    let fo = factor_offset.trim_start_matches('(').trim_end_matches(')');
    let (f, o) = fo
        .split_once(',')
        .ok_or_else(|| "bad (factor,offset)".to_owned())?;
    let factor: f64 = f.parse().map_err(|_| "bad factor".to_owned())?;
    let offset: f64 = o.parse().map_err(|_| "bad offset".to_owned())?;

    let min_max = parts.next().ok_or("missing [min|max]")?;
    let mm = min_max.trim_start_matches('[').trim_end_matches(']');
    let (mn, mx) = mm
        .split_once('|')
        .ok_or_else(|| "bad [min|max]".to_owned())?;
    let min: f64 = mn.parse().map_err(|_| "bad min".to_owned())?;
    let max: f64 = mx.parse().map_err(|_| "bad max".to_owned())?;

    let unit = parts.next().unwrap_or("\"\"").trim_matches('"').to_owned();
    let receivers: Vec<String> = parts
        .next()
        .unwrap_or_default()
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();

    Ok(Signal {
        name,
        start_bit,
        length,
        byte_order,
        signed,
        factor,
        offset,
        min,
        max,
        unit,
        receivers,
        values: ValueTable::default(),
        comment: None,
    })
}

fn parse_val(rest: &str, db: &mut Database) -> Result<(), String> {
    let mut tokens = rest.split_whitespace().peekable();
    let id: u32 = tokens
        .next()
        .ok_or("missing VAL_ message id")?
        .parse()
        .map_err(|_| "bad VAL_ message id".to_owned())?;
    let signame = tokens.next().ok_or("missing VAL_ signal name")?.to_owned();

    // The remainder alternates raw values and quoted labels; labels may
    // contain spaces, so re-scan the raw text after the signal name.
    let after = rest
        .splitn(3, ' ')
        .nth(2)
        .ok_or("missing VAL_ entries")?
        .trim()
        .trim_end_matches(';')
        .trim();
    let mut entries = Vec::new();
    let mut remaining = after;
    while !remaining.is_empty() {
        let (num, rest2) = remaining
            .split_once(' ')
            .ok_or_else(|| "dangling VAL_ value".to_owned())?;
        let raw: i64 = num
            .trim()
            .parse()
            .map_err(|_| "bad VAL_ value".to_owned())?;
        let rest2 = rest2.trim_start();
        if !rest2.starts_with('"') {
            return Err("VAL_ label must be quoted".into());
        }
        let close = rest2[1..]
            .find('"')
            .ok_or_else(|| "unterminated VAL_ label".to_owned())?;
        let label = rest2[1..1 + close].to_owned();
        entries.push((raw, label));
        remaining = rest2[close + 2..].trim();
    }

    if let Some(m) = db.messages.iter_mut().find(|m| m.id == id) {
        if let Some(s) = m.signals.iter_mut().find(|s| s.name == signame) {
            s.values = ValueTable { entries };
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
VERSION "1.0"

NS_ :
    NS_DESC_

BS_:

BU_: VMG ECU GW

BO_ 100 reqSw: 8 VMG
 SG_ reqType : 0|4@1+ (1,0) [0|15] "" ECU
 SG_ seq : 4|8@1+ (1,0) [0|255] "" ECU,GW

BO_ 101 rptSw: 8 ECU
 SG_ status : 0|8@1+ (1,0) [0|255] "" VMG
 SG_ temp : 8|8@1- (0.5,-40) [-40|87.5] "degC" VMG

CM_ BO_ 100 "Request software status";
CM_ SG_ 100 reqType "Type of diagnostic request";
VAL_ 100 reqType 0 "DIAG" 1 "UPDATE" ;
"#;

    #[test]
    fn parses_example_database() {
        let db = parse(EXAMPLE).unwrap();
        assert_eq!(db.version, "1.0");
        assert_eq!(db.nodes, vec!["VMG", "ECU", "GW"]);
        assert_eq!(db.messages.len(), 2);
        let req = db.message_by_name("reqSw").unwrap();
        assert_eq!(req.id, 100);
        assert_eq!(req.dlc, 8);
        assert_eq!(req.sender, "VMG");
        assert_eq!(req.signals.len(), 2);
    }

    #[test]
    fn signal_attributes() {
        let db = parse(EXAMPLE).unwrap();
        let temp = db.message_by_name("rptSw").unwrap().signal("temp").unwrap();
        assert!(temp.signed);
        assert_eq!(temp.factor, 0.5);
        assert_eq!(temp.offset, -40.0);
        assert_eq!(temp.unit, "degC");
        assert_eq!(temp.to_physical(96), 8.0);
    }

    #[test]
    fn receivers_are_split() {
        let db = parse(EXAMPLE).unwrap();
        let seq = db.message_by_name("reqSw").unwrap().signal("seq").unwrap();
        assert_eq!(seq.receivers, vec!["ECU", "GW"]);
    }

    #[test]
    fn comments_attach() {
        let db = parse(EXAMPLE).unwrap();
        assert_eq!(
            db.message_by_name("reqSw").unwrap().comment.as_deref(),
            Some("Request software status")
        );
        assert_eq!(
            db.message_by_name("reqSw")
                .unwrap()
                .signal("reqType")
                .unwrap()
                .comment
                .as_deref(),
            Some("Type of diagnostic request")
        );
    }

    #[test]
    fn value_tables_attach() {
        let db = parse(EXAMPLE).unwrap();
        let vt = &db
            .message_by_name("reqSw")
            .unwrap()
            .signal("reqType")
            .unwrap()
            .values;
        assert_eq!(vt.label(0), Some("DIAG"));
        assert_eq!(vt.raw("UPDATE"), Some(1));
    }

    #[test]
    fn signal_outside_message_errors() {
        let err = parse(" SG_ x : 0|8@1+ (1,0) [0|255] \"\" A").unwrap_err();
        assert!(err.message.contains("outside"));
    }

    #[test]
    fn unknown_records_are_skipped() {
        let db = parse("BA_DEF_ \"GenMsgCycleTime\" INT 0 10000;\nBU_: A").unwrap();
        assert_eq!(db.nodes, vec!["A"]);
    }

    #[test]
    fn bad_layout_errors() {
        let err = parse("BO_ 1 m: 8 A\n SG_ x : nonsense (1,0) [0|1] \"\" B").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn val_labels_with_spaces() {
        let src = "BO_ 1 m: 8 A\n SG_ x : 0|8@1+ (1,0) [0|255] \"\" B\nVAL_ 1 x 0 \"two words\" 1 \"three word label\" ;";
        let db = parse(src).unwrap();
        let vt = &db.message_by_id(1).unwrap().signal("x").unwrap().values;
        assert_eq!(vt.label(0), Some("two words"));
        assert_eq!(vt.label(1), Some("three word label"));
    }
}
