//! Data model for CAN databases.

use serde::{Deserialize, Serialize};

/// Signal byte order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ByteOrder {
    /// Intel / little-endian (`@1` in DBC).
    LittleEndian,
    /// Motorola / big-endian (`@0` in DBC).
    BigEndian,
}

/// A named value table for a signal (`VAL_` entries).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ValueTable {
    /// `(raw value, label)` pairs.
    pub entries: Vec<(i64, String)>,
}

impl ValueTable {
    /// The label for a raw value, if defined.
    pub fn label(&self, raw: i64) -> Option<&str> {
        self.entries
            .iter()
            .find(|(v, _)| *v == raw)
            .map(|(_, l)| l.as_str())
    }

    /// The raw value for a label, if defined.
    pub fn raw(&self, label: &str) -> Option<i64> {
        self.entries
            .iter()
            .find(|(_, l)| l == label)
            .map(|(v, _)| *v)
    }
}

/// One signal within a message (`SG_`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    /// Signal name.
    pub name: String,
    /// Start bit (DBC numbering).
    pub start_bit: u16,
    /// Width in bits (1–64).
    pub length: u16,
    /// Byte order.
    pub byte_order: ByteOrder,
    /// Whether the raw value is signed (`-` in DBC).
    pub signed: bool,
    /// Physical = raw × factor + offset.
    pub factor: f64,
    /// Physical = raw × factor + offset.
    pub offset: f64,
    /// Minimum physical value.
    pub min: f64,
    /// Maximum physical value.
    pub max: f64,
    /// Unit string.
    pub unit: String,
    /// Receiving node names.
    pub receivers: Vec<String>,
    /// Optional value table.
    pub values: ValueTable,
    /// Optional comment (`CM_ SG_`).
    pub comment: Option<String>,
}

impl Signal {
    /// Convert a raw value to its physical interpretation.
    pub fn to_physical(&self, raw: i64) -> f64 {
        raw as f64 * self.factor + self.offset
    }

    /// Convert a physical value to the nearest raw value.
    pub fn to_raw(&self, physical: f64) -> i64 {
        ((physical - self.offset) / self.factor).round() as i64
    }
}

/// One message (`BO_`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// CAN identifier.
    pub id: u32,
    /// Message name.
    pub name: String,
    /// Data length code (payload size in bytes, 0–8 for classic CAN).
    pub dlc: usize,
    /// Sending node name.
    pub sender: String,
    /// The message's signals.
    pub signals: Vec<Signal>,
    /// Optional comment (`CM_ BO_`).
    pub comment: Option<String>,
}

impl Message {
    /// Find a signal by name.
    pub fn signal(&self, name: &str) -> Option<&Signal> {
        self.signals.iter().find(|s| s.name == name)
    }
}

/// A parsed CAN database.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Database {
    /// The `VERSION` string, if present.
    pub version: String,
    /// Network node names (`BU_`).
    pub nodes: Vec<String>,
    /// Messages (`BO_`), in file order.
    pub messages: Vec<Message>,
}

impl Database {
    /// Find a message by symbolic name.
    pub fn message_by_name(&self, name: &str) -> Option<&Message> {
        self.messages.iter().find(|m| m.name == name)
    }

    /// Find a message by CAN identifier.
    pub fn message_by_id(&self, id: u32) -> Option<&Message> {
        self.messages.iter().find(|m| m.id == id)
    }

    /// Messages sent by a given node.
    pub fn messages_from<'a>(&'a self, node: &'a str) -> impl Iterator<Item = &'a Message> {
        self.messages.iter().filter(move |m| m.sender == node)
    }

    /// Messages received by a given node (any of its signals lists the node
    /// as receiver).
    pub fn messages_to<'a>(&'a self, node: &'a str) -> impl Iterator<Item = &'a Message> {
        self.messages.iter().filter(move |m| {
            m.signals
                .iter()
                .any(|s| s.receivers.iter().any(|r| r == node))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(name: &str) -> Signal {
        Signal {
            name: name.into(),
            start_bit: 0,
            length: 8,
            byte_order: ByteOrder::LittleEndian,
            signed: false,
            factor: 0.5,
            offset: -10.0,
            min: 0.0,
            max: 100.0,
            unit: "km/h".into(),
            receivers: vec!["ECU".into()],
            values: ValueTable::default(),
            comment: None,
        }
    }

    #[test]
    fn physical_conversion_roundtrips() {
        let s = sig("speed");
        assert_eq!(s.to_physical(40), 10.0);
        assert_eq!(s.to_raw(10.0), 40);
    }

    #[test]
    fn value_table_lookup() {
        let vt = ValueTable {
            entries: vec![(0, "DIAG".into()), (1, "UPDATE".into())],
        };
        assert_eq!(vt.label(1), Some("UPDATE"));
        assert_eq!(vt.raw("DIAG"), Some(0));
        assert_eq!(vt.label(9), None);
    }

    #[test]
    fn database_queries() {
        let db = Database {
            version: String::new(),
            nodes: vec!["VMG".into(), "ECU".into()],
            messages: vec![Message {
                id: 100,
                name: "reqSw".into(),
                dlc: 8,
                sender: "VMG".into(),
                signals: vec![sig("reqType")],
                comment: None,
            }],
        };
        assert!(db.message_by_name("reqSw").is_some());
        assert!(db.message_by_id(100).is_some());
        assert_eq!(db.messages_from("VMG").count(), 1);
        assert_eq!(db.messages_to("ECU").count(), 1);
        assert_eq!(db.messages_to("VMG").count(), 0);
    }
}
