//! Property-based tests for the signal codec: encode/decode round-trips for
//! arbitrary layouts, and non-interference between disjoint signals.

use candb::{ByteOrder, Signal, ValueTable};
use proptest::prelude::*;

fn signal(start: u16, len: u16, order: ByteOrder, signed: bool) -> Signal {
    Signal {
        name: "s".into(),
        start_bit: start,
        length: len,
        byte_order: order,
        signed,
        factor: 1.0,
        offset: 0.0,
        min: 0.0,
        max: 0.0,
        unit: String::new(),
        receivers: vec![],
        values: ValueTable::default(),
        comment: None,
    }
}

/// A little-endian layout that fits in 8 bytes.
fn arb_le_layout() -> impl Strategy<Value = (u16, u16)> {
    (1u16..=64).prop_flat_map(|len| (0u16..=(64 - len), Just(len)))
}

/// A big-endian (Motorola) layout that fits: start bit is the MSB position;
/// the signal occupies `len` bits walking the sawtooth downwards. Keeping
/// `start` in the first byte with enough room below suffices for validity.
fn arb_be_layout() -> impl Strategy<Value = (u16, u16)> {
    (1u16..=32).prop_flat_map(|len| {
        // Choose a start bit whose sawtooth run stays inside 8 bytes.
        // Position index = byte*8 + (7-bit); run must end <= 63.
        (0u16..=7u16, Just(len)).prop_map(|(bit, len)| {
            let byte = 0u16;
            let start = byte * 8 + bit;
            (start, len)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn little_endian_roundtrip((start, len) in arb_le_layout(), raw in any::<u64>()) {
        let s = signal(start, len, ByteOrder::LittleEndian, false);
        let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        let value = (raw & mask) as i64;
        let mut payload = [0u8; 8];
        s.encode(&mut payload, value);
        prop_assert_eq!(s.decode(&payload), value);
    }

    #[test]
    fn big_endian_roundtrip((start, len) in arb_be_layout(), raw in any::<u32>()) {
        let s = signal(start, len, ByteOrder::BigEndian, false);
        let mask = if len >= 32 { u32::MAX } else { (1u32 << len) - 1 };
        let value = i64::from(raw & mask);
        let mut payload = [0u8; 8];
        s.encode(&mut payload, value);
        prop_assert_eq!(s.decode(&payload), value);
    }

    #[test]
    fn signed_roundtrip((start, len) in arb_le_layout(), raw in any::<i64>()) {
        prop_assume!((2..=63).contains(&len));
        let s = signal(start, len, ByteOrder::LittleEndian, true);
        // Map into the signed range of the signal via i128 to avoid overflow.
        let half = 1i128 << (len - 1);
        let span = half * 2;
        let value = ((i128::from(raw) % span + span) % span - half) as i64;
        let mut payload = [0u8; 8];
        s.encode(&mut payload, value);
        prop_assert_eq!(s.decode(&payload), value);
    }

    #[test]
    fn disjoint_le_signals_do_not_interfere(
        boundary in 1u16..63,
        len_a in 1u16..=32,
        len_b in 1u16..=32,
        raw_a in any::<u64>(),
        raw_b in any::<u64>(),
    ) {
        // Construct genuinely disjoint layouts on either side of `boundary`.
        let len_a = len_a.min(boundary);
        let len_b = len_b.min(64 - boundary);
        let start_a = boundary - len_a;
        let start_b = boundary;

        let a = signal(start_a, len_a, ByteOrder::LittleEndian, false);
        let b = signal(start_b, len_b, ByteOrder::LittleEndian, false);
        let mask_a = if len_a == 64 { u64::MAX } else { (1u64 << len_a) - 1 };
        let mask_b = if len_b == 64 { u64::MAX } else { (1u64 << len_b) - 1 };
        let va = (raw_a & mask_a) as i64;
        let vb = (raw_b & mask_b) as i64;

        let mut payload = [0u8; 8];
        a.encode(&mut payload, va);
        b.encode(&mut payload, vb);
        prop_assert_eq!(a.decode(&payload), va);
        prop_assert_eq!(b.decode(&payload), vb);
    }

    #[test]
    fn physical_conversion_roundtrips(factor in 1u32..1000, offset in -1000i32..1000, raw in -10_000i64..10_000) {
        let mut s = signal(0, 32, ByteOrder::LittleEndian, true);
        s.factor = f64::from(factor) * 0.001;
        s.offset = f64::from(offset) * 0.1;
        let physical = s.to_physical(raw);
        prop_assert_eq!(s.to_raw(physical), raw);
    }
}
