//! Attack-tree analysis (§IV-E): define an attack as a series-parallel
//! graph, translate it to a CSP process, and ask the refinement checker
//! whether the modelled system admits the attack.
//!
//! Run with: `cargo run --example attack_analysis`

use csp::{Alphabet, Definitions, EventSet, Process};
use fdrlite::Checker;
use secmod::AttackTree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The attack: to flash malicious firmware, the attacker must first
    // probe the gateway AND capture an update request (in either order),
    // then either replay it or forge a fresh one.
    let tree = AttackTree::Seq(vec![
        AttackTree::Par(vec![
            AttackTree::leaf("probe_gateway"),
            AttackTree::leaf("capture_reqApp"),
        ]),
        AttackTree::Choice(vec![
            AttackTree::leaf("replay_reqApp"),
            AttackTree::leaf("forge_reqApp"),
        ]),
        AttackTree::leaf("ecu_flashes_malware"),
    ]);

    println!("== attack tree sequences (the paper's (·) semantics) ==");
    for seq in tree.sequences() {
        println!("  {}", seq.join(" → "));
    }

    // Translate the tree to CSP and compose a monitor that signals success.
    let mut alphabet = Alphabet::new();
    let mut defs = Definitions::new();
    let monitor = tree.to_monitor(&mut alphabet, &mut defs, "attack_success");

    // A defended system: the gateway rate-limits probes, and replayed
    // requests are rejected by a freshness check — the attacker can still
    // probe and capture, but neither injection step is available.
    let probe = alphabet.lookup("probe_gateway").expect("interned");
    let capture = alphabet.lookup("capture_reqApp").expect("interned");
    let defended = {
        let loop_id = defs.declare("DEFENDED");
        defs.define(
            loop_id,
            Process::external_choice(
                Process::prefix(probe, Process::var(loop_id)),
                Process::prefix(capture, Process::var(loop_id)),
            ),
        );
        Process::var(loop_id)
    };

    // An undefended system additionally lets injected requests through.
    let replay = alphabet.lookup("replay_reqApp").expect("interned");
    let flash = alphabet.lookup("ecu_flashes_malware").expect("interned");
    let undefended = {
        let id = defs.declare("UNDEFENDED");
        defs.define(
            id,
            Process::external_choice_all(vec![
                Process::prefix(probe, Process::var(id)),
                Process::prefix(capture, Process::var(id)),
                Process::prefix(replay, Process::prefix(flash, Process::var(id))),
            ]),
        );
        Process::var(id)
    };

    // "Can the attack complete?" = does the composed system reach
    // attack_success? Ask it as a trace refinement against a spec that
    // forbids the success event.
    let checker = Checker::new();
    let success = alphabet.lookup("attack_success").expect("interned");
    let universe: EventSet = alphabet.universe();
    let no_attack = fdrlite::properties::never(
        &mut defs,
        "NO_ATTACK",
        &universe,
        &EventSet::singleton(success),
    );

    for (name, system) in [("defended", defended), ("undefended", undefended)] {
        let attack_events = tree
            .actions()
            .iter()
            .filter_map(|a| alphabet.lookup(a))
            .collect::<EventSet>();
        let composed = Process::parallel(attack_events, system, monitor.clone());
        let verdict = checker.trace_refinement(&no_attack, &composed, &defs)?;
        match verdict.counterexample() {
            None => println!("\n{name}: attack NOT possible (NO_ATTACK holds)"),
            Some(cex) => println!("\n{name}: attack succeeds — {}", cex.display(&alphabet)),
        }
    }
    Ok(())
}
