//! A second automotive security scenario: UDS-style SecurityAccess
//! (ISO 14229 service 0x27) — the seed/key handshake that gates protected
//! diagnostic functions like reflashing.
//!
//! The ECU hands out a *seed*; the tester must answer with the matching
//! *key* before the protected function unlocks. Two designs are compared
//! against a man-in-the-middle that records keys and replays them:
//!
//! * a **static-seed** ECU keeps challenging with the same seed — the
//!   recorded key unlocks it on the next cycle (**breach found**, with the
//!   replay trace as the counterexample);
//! * a **fresh-seed** ECU never re-issues a seed — every replayed key is
//!   rejected (**assertion passes**).
//!
//! Run with: `cargo run --example diagnostic_security`

use cspm::Script;
use fdrlite::Checker;

fn model(ecu_def: &str) -> String {
    format!(
        r#"
-- Seeds double as their keys: knowing the right response IS the secret.
nametype SeedT = {{0..1}}

channel reqSeed
channel seed : SeedT   -- ECU -> tester challenge
channel tkey : SeedT   -- tester -> network (tapped by the intruder)
channel key  : SeedT   -- network -> ECU
channel unlock, reject
channel breach

{ecu_def}

-- The authorised tester computes the right key for whatever seed arrives
-- (fire-and-forget: results go to the diagnostic application, not here).
TESTER = reqSeed -> seed?s -> tkey!s -> TESTER

-- The man in the middle: forwards the tester's keys (learning them), and
-- may instead inject a recorded key; an unlock following an injection is a
-- breach.
MITM(known) =
     tkey?k -> key!k -> MITM(union(known, {{k}}))
  [] unlock -> MITM(known)
  [] reject -> MITM(known)
  [] ([] k : known @ key!k ->
        (unlock -> breach -> STOP [] reject -> MITM(known)))

HONEST = TESTER [| {{| reqSeed, seed |}} |] ECU0
ATTACKED = HONEST [| {{| tkey, key, unlock, reject |}} |] MITM({{}})

NO_BREACH = [] e : diff(Events, {{| breach |}}) @ e -> NO_BREACH

assert NO_BREACH [T= ATTACKED
"#
    )
}

/// Static seed: the same challenge forever.
const STATIC_ECU: &str = "
ECU(s) = reqSeed -> seed.s ->
         key?k -> (if k == s then unlock -> ECU(s) else reject -> ECU(s))
ECU0 = ECU(0)
";

/// Fresh seeds: each challenge is used at most once, then the ECU locks out.
const FRESH_ECU: &str = "
ECU(s) = reqSeed -> seed.s ->
         key?k -> (if k == s then unlock -> NEXT(s) else reject -> NEXT(s))
NEXT(s) = if s == 0 then ECU(1) else LOCKED
LOCKED = reqSeed -> LOCKED
ECU0 = ECU(0)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checker = Checker::new();
    for (label, ecu) in [
        ("static-seed ECU", STATIC_ECU),
        ("fresh-seed ECU", FRESH_ECU),
    ] {
        let source = model(ecu);
        let loaded = Script::parse(&source)?.load()?;
        let results = loaded.check(&checker)?;
        println!("== {label} ==");
        for r in &results {
            match r.verdict.counterexample() {
                None => println!("  assert {}  ...  PASS (replay defeated)", r.description),
                Some(cex) => {
                    println!("  assert {}  ...  FAIL", r.description);
                    println!("  breach: {}", cex.display(loaded.alphabet()));
                }
            }
        }
        println!();
    }
    Ok(())
}
