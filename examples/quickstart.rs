//! Quickstart: translate a CAPL ECU application into CSPm and verify the
//! paper's SP02 integrity property against it.
//!
//! Run with: `cargo run --example quickstart`

use fdrlite::Checker;
use translator::{Pipeline, TranslateConfig};

const ECU_APPLICATION: &str = "
/* A minimal diagnostic responder, as programmed in the CANoe IDE. */
variables
{
  message reqSw msgRequest;
  message rptSw msgReport;
}

on message reqSw
{
  output(msgReport);
}
";

const NETWORK_DBC: &str = "
BU_: VMG ECU
BO_ 256 reqSw: 8 VMG
 SG_ reqType : 0|4@1+ (1,0) [0|15] \"\" ECU
BO_ 512 rptSw: 8 ECU
 SG_ status : 0|8@1+ (1,0) [0|255] \"\" VMG
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run the model extractor: CAPL + CAN database → CSPm.
    let pipeline = Pipeline::new(TranslateConfig::ecu("ECU"));
    let out = pipeline.run(ECU_APPLICATION, Some(NETWORK_DBC))?;

    println!("=== generated CSPm implementation model ===");
    println!("{}", out.script);

    // 2. Build the paper's SP02 specification: every software inventory
    //    request is answered before the next one.
    let mut defs = out.loaded.definitions().clone();
    let req = out
        .loaded
        .alphabet()
        .lookup("rec.reqSw")
        .expect("request event");
    let rpt = out
        .loaded
        .alphabet()
        .lookup("send.rptSw")
        .expect("response event");
    let sp02 = fdrlite::properties::request_response(&mut defs, "SP02", req, rpt);

    // 3. Check SP02 ⊑T ECU.
    let ecu = out.loaded.process(&out.entry).expect("entry process");
    let verdict = Checker::new().trace_refinement(&sp02, ecu, &defs)?;
    match verdict {
        fdrlite::Verdict::Pass => println!("assert SP02 [T= ECU  ...  PASS"),
        fdrlite::Verdict::Fail(cex) => {
            println!(
                "assert SP02 [T= ECU  ...  FAIL\n  counterexample: {}",
                cex.display(out.loaded.alphabet())
            );
        }
        fdrlite::Verdict::Inconclusive(inc) => {
            println!("assert SP02 [T= ECU  ...  INCONCLUSIVE ({inc})");
        }
    }
    Ok(())
}
