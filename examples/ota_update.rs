//! The full case study of the paper (§V): the ITU-T X.1373 over-the-air
//! software update between the Vehicle Mobile Gateway and a target ECU.
//!
//! The example walks the complete Fig. 1 workflow and prints a stage table:
//!
//! 1. simulate the CAPL applications on the CAN bus (`canoe-sim`);
//! 2. extract the CSP implementation models (`translator`);
//! 3. check Table III's requirements R01–R04 (`fdrlite`);
//! 4. interpose a Dolev-Yao intruder and show each attack's counterexample;
//! 5. check R05 through the MAC-secured model.
//!
//! Run with: `cargo run --example ota_update`

use std::time::Instant;

use fdrlite::{Checker, RefinementModel};
use ota::{attacks, messages, requirements, secured, sources, system::OtaSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t_total = Instant::now();

    // ---- 1. Simulate (the "CANoe" stage) -------------------------------
    let t = Instant::now();
    let mut sim = canoe_sim::Simulation::new(Some(messages::database()));
    sim.add_node("VMG", capl::parse(sources::VMG_CAPL)?)?;
    sim.add_node("ECU", capl::parse(sources::ECU_CAPL)?)?;
    sim.run_for(100_000)?;
    println!("== simulated CAN bus trace (Fig. 2 network) ==");
    for entry in sim.trace() {
        if let canoe_sim::TraceEvent::Transmit {
            node, message, id, ..
        } = &entry.event
        {
            println!(
                "  {:>7} µs  {node:>4} → bus  {message} (0x{id:x})",
                entry.time_us
            );
        }
    }
    let sim_us = t.elapsed().as_micros();

    // ---- 2. Extract the models ------------------------------------------
    let t = Instant::now();
    let mut study = OtaSystem::build()?;
    let extract_us = t.elapsed().as_micros();
    println!("\n== extracted CSPm system model ==\n{}", study.script());

    // ---- 3. Check Table III on the honest system ------------------------
    let t = Instant::now();
    let checker = Checker::new();
    println!("== Table III requirements on the honest system ==");
    let reqs = requirements::all(&mut study)?;
    for req in &reqs {
        let verdict =
            checker.trace_refinement(&req.spec, &req.scoped_system, study.definitions())?;
        println!(
            "  {}  {}  — {}",
            req.id,
            if verdict.is_pass() { "PASS" } else { "FAIL" },
            req.text
        );
    }
    let honest_us = t.elapsed().as_micros();

    // ---- 4. Attack scenarios --------------------------------------------
    let t = Instant::now();
    println!("\n== attack scenarios (Dolev-Yao intruder on the update path) ==");
    let scenarios = attacks::scenarios(&mut study)?;
    for sc in &scenarios {
        let verdict = match sc.requirement.model {
            RefinementModel::Traces => checker.trace_refinement(
                &sc.requirement.spec,
                &sc.requirement.scoped_system,
                study.definitions(),
            )?,
            RefinementModel::Failures => checker.failures_refinement(
                &sc.requirement.spec,
                &sc.requirement.scoped_system,
                study.definitions(),
            )?,
        };
        println!("  {:?} attack — {}", sc.kind, sc.description);
        match verdict.counterexample() {
            Some(cex) => println!(
                "    violates {}: {}",
                sc.requirement.id,
                cex.display(study.alphabet())
            ),
            None => println!("    unexpectedly passed"),
        }
    }
    let attacks_us = t.elapsed().as_micros();

    // ---- 5. R05: the shared-key (MAC) model ------------------------------
    let t = Instant::now();
    println!("\n== R05: MAC-secured update path ==");
    for r in secured::check_script(secured::MAC_SCRIPT, &checker)? {
        println!(
            "  assert {}  ...  {}",
            r.description,
            if r.verdict.is_pass() { "PASS" } else { "FAIL" }
        );
    }
    println!("  (without verification:)");
    for r in secured::check_script(secured::INSECURE_SCRIPT, &checker)? {
        println!(
            "  assert {}  ...  {}",
            r.description,
            if r.verdict.is_pass() { "PASS" } else { "FAIL" }
        );
    }
    let r05_us = t.elapsed().as_micros();

    // ---- Stage table (Fig. 1 workflow) ----------------------------------
    println!("\n== workflow stage timings ==");
    println!("  simulate (CANoe substitute)   {sim_us:>8} µs");
    println!("  extract models (translator)   {extract_us:>8} µs");
    println!("  check honest system (FDR sub) {honest_us:>8} µs");
    println!("  check attack scenarios        {attacks_us:>8} µs");
    println!("  check R05 MAC models          {r05_us:>8} µs");
    println!(
        "  total                         {:>8} µs",
        t_total.elapsed().as_micros()
    );
    Ok(())
}
