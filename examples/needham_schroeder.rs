//! Rediscovering Lowe's attack on the Needham–Schroeder public-key
//! protocol — the paper's own §II-B motivation for CSP-based security
//! checking ("exposed 18 years later through formal analysis using CSP").
//!
//! The protocol, its Dolev-Yao network, and the authentication property are
//! all written in CSPm; the refinement checker produces the famous
//! man-in-the-middle interleaving as a counterexample.
//!
//! Run with: `cargo run --example needham_schroeder`

use cspm::Script;
use fdrlite::Checker;

const NSPK: &str = r#"
datatype AgentT = alice | bob | mallory
datatype NonceT = na | nb | ni

channel snd1, rcv1 : AgentT.AgentT.NonceT.AgentT
channel snd2, rcv2 : AgentT.AgentT.NonceT.NonceT
channel snd3, rcv3 : AgentT.AgentT.NonceT
channel running, finished : AgentT.AgentT

ALICE = [] b : {bob, mallory} @
          running.alice.b ->
          snd1.alice.b.na.alice ->
          rcv2?src!alice!na?x ->
          snd3.alice.b.x ->
          finished.alice.b -> STOP

BOB = rcv1?src!bob?n?a ->
      snd2.bob.a.n.nb ->
      rcv3?src2!bob!nb ->
      finished.bob.a -> STOP

INTRUDER(known) =
     snd1?a?b?n?a2 ->
       (if b == mallory then INTRUDER(union(known, {n}))
        else (rcv1.a.b.n.a2 -> INTRUDER(known) |~| INTRUDER(known)))
  [] snd2?a?b?n1?n2 ->
       (if b == mallory then INTRUDER(union(known, {n1, n2}))
        else (rcv2.a.b.n1.n2 -> INTRUDER(known) |~| INTRUDER(known)))
  [] snd3?a?b?n ->
       (if b == mallory then INTRUDER(union(known, {n}))
        else (rcv3.a.b.n -> INTRUDER(known) |~| INTRUDER(known)))
  [] ([] b : {alice, bob} @ [] n : known @ [] a2 : {alice, bob} @
        rcv1.mallory.b.n.a2 -> INTRUDER(known))
  [] ([] b : {alice, bob} @ [] n1 : known @ [] n2 : known @
        rcv2.mallory.b.n1.n2 -> INTRUDER(known))
  [] ([] b : {alice, bob} @ [] n : known @
        rcv3.mallory.b.n -> INTRUDER(known))

NETSET = {| snd1, snd2, snd3, rcv1, rcv2, rcv3 |}
SYSTEM = (ALICE ||| BOB) [| NETSET |] INTRUDER({ni})

RUNALL = [] e : Events @ e -> RUNALL
AUTH = running.alice.bob -> RUNALL
    [] ([] e : diff(Events, {| running.alice.bob, finished.bob.alice |}) @ e -> AUTH)

assert AUTH [T= SYSTEM
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Needham–Schroeder public-key protocol (1978) under a Dolev-Yao network.\n");
    let loaded = Script::parse(NSPK)?.load()?;
    println!(
        "model loaded: {} events, {} process definitions",
        loaded.alphabet().len(),
        loaded.definitions().len()
    );

    let results = loaded.check(&Checker::new())?;
    for r in &results {
        match r.verdict.counterexample() {
            None => println!("assert {}  ...  PASS", r.description),
            Some(cex) => {
                println!("assert {}  ...  FAIL", r.description);
                println!("\nLowe's attack (1995), rediscovered:");
                println!("  {}", cex.display(loaded.alphabet()));
                println!("\nReading the witness:");
                println!("  • Alice starts a session with Mallory;");
                println!("  • Mallory re-encrypts her nonce to Bob, posing as Alice;");
                println!("  • Bob completes the handshake believing he talked to Alice,");
                println!("    while Alice never ran the protocol with Bob.");
            }
        }
    }
    Ok(())
}
