//! Driving the CANoe-substitute simulator directly: priority arbitration,
//! timers, signal coding, a man-in-the-middle interceptor — and the
//! validation loop against the extracted CSP model.
//!
//! Run with: `cargo run --example bus_simulation`

use canoe_sim::{Frame, Interceptor, Simulation, TraceEvent};

/// An interceptor that drops every second frame (a crude jammer).
struct Jammer {
    count: usize,
}

impl Interceptor for Jammer {
    fn on_frame(&mut self, frame: &Frame, _time_us: u64) -> Vec<Frame> {
        self.count += 1;
        if self.count.is_multiple_of(2) {
            Vec::new()
        } else {
            vec![frame.clone()]
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = ota::messages::database();

    // A periodic sender and a counting receiver.
    let sender = "
        variables { message reqSw m; msTimer t; int seq = 0; }
        on start { setTimer(t, 10); }
        on timer t {
            m.seq = seq;
            output(m);
            seq = seq + 1;
            setTimer(t, 10);
        }
    ";
    let receiver = "
        variables { int received = 0; int lastSeq = 0; }
        on message reqSw {
            received = received + 1;
            lastSeq = this.seq;
        }
    ";

    println!("== clean run ==");
    let mut sim = Simulation::new(Some(db.clone()));
    sim.add_node("VMG", capl::parse(sender)?)?;
    sim.add_node("ECU", capl::parse(receiver)?)?;
    sim.run_for(100_000)?; // 100 ms → ~10 periods
    let received = sim.node_global("ECU", "received")?.unwrap();
    let last_seq = sim.node_global("ECU", "lastSeq")?.unwrap();
    println!("  frames received: {received:?}, last sequence number: {last_seq:?}");

    println!("\n== with a jammer dropping every second frame ==");
    let mut sim = Simulation::new(Some(db.clone()));
    sim.add_node("VMG", capl::parse(sender)?)?;
    sim.add_node("ECU", capl::parse(receiver)?)?;
    sim.set_interceptor(Box::new(Jammer { count: 0 }));
    sim.run_for(100_000)?;
    let received = sim.node_global("ECU", "received")?.unwrap();
    println!("  frames received: {received:?}");
    let drops = sim
        .trace()
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::Intercepted { .. }))
        .count();
    println!("  frames dropped by the jammer: {drops}");

    println!("\n== arbitration: lower CAN ids win the bus ==");
    let contender = "
        variables { message rptSw low_prio; message reqSw high_prio; }
        on start { output(low_prio); output(high_prio); }
    ";
    let mut sim = Simulation::new(Some(db));
    sim.add_node("NODE", capl::parse(contender)?)?;
    sim.run_for(10_000)?;
    let order: Vec<&str> = sim
        .trace()
        .iter()
        .filter_map(|e| e.event.transmit_name())
        .collect();
    println!("  output order in code : [rptSw, reqSw]");
    println!("  bus transmission order: {order:?} (reqSw has the lower id)");

    Ok(())
}
